package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cobcast/internal/pdu"
	"cobcast/internal/udpnet"
)

// SyscallRow is one (cluster size, wire path) cell of the syscall
// amortization experiment [E13].
type SyscallRow struct {
	N    int
	Mmsg bool
	// PDUs is the number of PDU broadcasts the sender issued.
	PDUs int
	// SendSyscalls and RecvSyscalls count the syscalls that carried
	// them: sendto/recvfrom calls on the portable path, sendmmsg/
	// recvmmsg calls on the batched path (receive side summed over the
	// n-1 receivers).
	SendSyscalls uint64
	RecvSyscalls uint64
	// SyscallsPerPDU is (send+recv syscalls) / delivered PDU copies —
	// the per-PDU kernel-crossing cost the batching amortizes.
	SyscallsPerPDU float64
	// DeliveredKpps is decoded PDU copies per second of send time;
	// DeliveredFrac is the fraction of PDU copies that survived the
	// lossy loopback path.
	DeliveredKpps float64
	DeliveredFrac float64
}

// SyscallAmortization replays the Fig. 8-shaped blast workload — one
// sender, frames of batch PDUs staged four deep, n-1 decoding receivers
// — over a real UDP loopback mesh, once per wire path, and reports how
// many syscalls carried each PDU. On the batched path one staged flush
// toward all peers is a single sendmmsg and receivers drain a ring per
// recvmmsg, so syscalls/PDU falls by roughly batch×peers on the send
// side; the portable path pays one syscall per datagram per peer.
func SyscallAmortization(ns []int, frames, batch int) ([]SyscallRow, error) {
	var rows []SyscallRow
	for _, n := range ns {
		for _, mmsg := range []bool{false, true} {
			row, err := syscallCell(n, frames, batch, mmsg)
			if err != nil {
				return nil, err
			}
			if row == nil {
				continue // batched path unsupported on this platform
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func syscallCell(n, frames, batch int, mmsg bool) (*SyscallRow, error) {
	trs, err := udpMesh(n, udpnet.WithBatchSyscalls(mmsg))
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	if mmsg && !trs[0].BatchSyscalls() {
		return nil, nil
	}

	var delivered atomic.Uint64
	var wg sync.WaitGroup
	for _, tr := range trs[1:] {
		wg.Add(1)
		go func(tr *udpnet.Transport) {
			defer wg.Done()
			var dec pdu.FrameDecoder
			var scratch pdu.PDU
			for raw := range tr.Recv() {
				if dec.Reset(raw) == nil {
					for {
						ok, err := dec.Next(&scratch)
						if !ok || err != nil {
							break
						}
						delivered.Add(1)
					}
				}
				pdu.PutDatagram(raw)
			}
		}(tr)
	}

	const group = 4 // frames staged per flush, as the wire link stages them
	p := &pdu.PDU{
		Kind: pdu.KindData, CID: 1, Src: 0, SEQ: 1,
		ACK: make([]pdu.Seq, n), LSrc: pdu.NoEntity,
		Data: make([]byte, 64),
	}
	var enc pdu.FrameEncoder
	bufs := make([][]byte, group)
	for k := range bufs {
		bufs[k] = make([]byte, 0, udpnet.MaxDatagram)
	}
	staged := make([][]byte, 0, group)
	pdus := 0
	start := time.Now()
	for f := 0; f < frames; {
		staged = staged[:0]
		for g := 0; g < group && f < frames; g, f = g+1, f+1 {
			enc.Begin(bufs[g][:0])
			for j := 0; j < batch; j++ {
				p.SEQ = pdu.Seq(pdus + 1)
				if err := enc.Append(p); err != nil {
					return nil, err
				}
				pdus++
			}
			bufs[g] = enc.Bytes()
			staged = append(staged, bufs[g])
		}
		if err := trs[0].BroadcastBatch(staged); err != nil {
			return nil, err
		}
	}
	// End-to-end clock: wait for the receivers to decode everything, so
	// delivered kpps measures drained throughput rather than how fast
	// datagrams can be parked in kernel/inbox buffers. Lost datagrams
	// (overrun under the unthrottled blast) never arrive, so the clock
	// stops at the last delivery progress instead of a timeout.
	want := uint64(pdus) * uint64(n-1)
	last, lastAt := delivered.Load(), time.Now()
	for last < want && time.Since(lastAt) < 500*time.Millisecond {
		time.Sleep(200 * time.Microsecond)
		if cur := delivered.Load(); cur > last {
			last, lastAt = cur, time.Now()
		}
	}
	elapsed := lastAt.Sub(start)

	sent := trs[0].Stats()
	sendCalls := sent.Sent + sent.SendErrors // one sendto each
	if mmsg {
		sendCalls = sent.SendmmsgCalls
	}
	var recvCalls uint64
	for _, tr := range trs[1:] {
		s := tr.Stats()
		if mmsg {
			recvCalls += s.RecvmmsgCalls
		} else {
			recvCalls += s.Received + s.ReadErrors
		}
		tr.Close()
	}
	trs[0].Close()
	wg.Wait()

	copies := delivered.Load()
	if copies == 0 {
		return nil, fmt.Errorf("syscalls: n=%d mmsg=%v delivered nothing", n, mmsg)
	}
	return &SyscallRow{
		N:              n,
		Mmsg:           mmsg,
		PDUs:           pdus,
		SendSyscalls:   sendCalls,
		RecvSyscalls:   recvCalls,
		SyscallsPerPDU: float64(sendCalls+recvCalls) / float64(copies),
		DeliveredKpps:  float64(copies) / elapsed.Seconds() / 1000,
		DeliveredFrac:  float64(copies) / float64(uint64(pdus)*uint64(n-1)),
	}, nil
}

// udpMesh binds n loopback transports into a full mesh with large
// inboxes (discover ephemeral ports, then re-bind with peer lists).
func udpMesh(n int, opts ...udpnet.Option) ([]*udpnet.Transport, error) {
	addrs := make([]string, n)
	for i := range addrs {
		tr, err := udpnet.New("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
		if err != nil {
			return nil, err
		}
		addrs[i] = tr.LocalAddr()
		if err := tr.Close(); err != nil {
			return nil, err
		}
	}
	trs := make([]*udpnet.Transport, 0, n)
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		tr, err := udpnet.New(addrs[i], peers, 8192, opts...)
		if err != nil {
			for _, t := range trs {
				t.Close()
			}
			return nil, fmt.Errorf("syscalls: rebind %d: %w", i, err)
		}
		trs = append(trs, tr)
	}
	return trs, nil
}
