package experiments

import (
	"fmt"
	"sync"
	"time"

	"cobcast"
)

// MultiGroupRow is one (cluster size, group count, submit rate) cell of
// the multi-group sweep [E14]: msgs messages spread round-robin over
// groups independent ordered groups on one real-time in-process cluster.
type MultiGroupRow struct {
	N      int
	Groups int
	// RateMsgs is the target aggregate submit rate in messages/second
	// (0 = unthrottled).
	RateMsgs float64
	Messages int
	// Wall is submit start to last delivery anywhere.
	Wall time.Duration
	// DeliveredKpps is delivered message copies (msgs × n) per second of
	// wall time — the cluster-wide ordered-delivery throughput.
	DeliveredKpps float64
	// FlowBlocked sums the per-group engines' flow-control stalls; it
	// shows when per-group windows, not the runtime, bound throughput.
	FlowBlocked uint64
}

// MultiGroupSweep runs the groups × n × rate sweep of experiment E14 on
// the real-time in-process cluster. groups=1 uses the default group —
// exactly the single-group runtime of every earlier experiment — so the
// first column of each block is the baseline the multi-group rows are
// read against. groups>1 runs that many named groups through the
// sharded group runtime over the same transport.
func MultiGroupSweep(ns, groupCounts []int, rates []float64, msgs, size int) ([]MultiGroupRow, error) {
	var rows []MultiGroupRow
	for _, n := range ns {
		for _, g := range groupCounts {
			for _, rate := range rates {
				row, err := multiGroupCell(n, g, rate, msgs, size)
				if err != nil {
					return nil, fmt.Errorf("e14 n=%d groups=%d rate=%.0f: %w", n, g, rate, err)
				}
				rows = append(rows, *row)
			}
		}
	}
	return rows, nil
}

// MultiGroupPorts opens the same groups ports on every node of a
// cluster: the default group when groups == 1, distinctly named groups
// otherwise. Shared by the E14 cell, coload and the throughput
// benchmark so they all drive the identical runtime surface.
func MultiGroupPorts(c *cobcast.Cluster, n, groups int) [][]*cobcast.GroupPort {
	ports := make([][]*cobcast.GroupPort, n)
	for i := 0; i < n; i++ {
		ports[i] = make([]*cobcast.GroupPort, groups)
		for g := 0; g < groups; g++ {
			id := cobcast.DefaultGroup
			if groups > 1 {
				id = cobcast.Group(fmt.Sprintf("e14-group-%d", g))
			}
			ports[i][g] = c.Group(i, id)
		}
	}
	return ports
}

func multiGroupCell(n, groups int, rate float64, msgs, size int) (*MultiGroupRow, error) {
	c, err := cobcast.NewCluster(n,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(5*time.Millisecond),
	)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	ports := MultiGroupPorts(c, n, groups)
	perGroup := make([]int, groups)
	for i := 0; i < msgs; i++ {
		perGroup[i%groups]++
	}

	// One drain per (node, group): a group's deliveries arrive on its
	// own port channel, so draining them all concurrently is the
	// multi-consumer shape a broker would run.
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		lastAt time.Time
	)
	errs := make(chan error, n*groups)
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			i, g := i, g
			wg.Add(1)
			go func() {
				defer wg.Done()
				seen := 0
				timeout := time.After(60 * time.Second)
				for seen < perGroup[g] {
					select {
					case _, ok := <-ports[i][g].Deliveries():
						if !ok {
							errs <- fmt.Errorf("node %d group %d: closed at %d/%d", i, g, seen, perGroup[g])
							return
						}
						seen++
					case <-timeout:
						errs <- fmt.Errorf("node %d group %d: timeout at %d/%d", i, g, seen, perGroup[g])
						return
					}
				}
				now := time.Now()
				mu.Lock()
				if now.After(lastAt) {
					lastAt = now
				}
				mu.Unlock()
				errs <- nil
			}()
		}
	}

	payload := make([]byte, size)
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	start := time.Now()
	next := start
	for i := 0; i < msgs; i++ {
		if err := ports[i%n][i%groups].Broadcast(payload); err != nil {
			return nil, err
		}
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	wall := lastAt.Sub(start)
	var flowBlocked uint64
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			if s, ok := ports[i][g].Stats(); ok {
				flowBlocked += s.FlowBlocked
			}
		}
	}
	return &MultiGroupRow{
		N:             n,
		Groups:        groups,
		RateMsgs:      rate,
		Messages:      msgs,
		Wall:          wall,
		DeliveredKpps: float64(msgs*n) / wall.Seconds() / 1000,
		FlowBlocked:   flowBlocked,
	}, nil
}
