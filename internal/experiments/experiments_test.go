package experiments

import (
	"strings"
	"testing"
	"time"

	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		seq uint64
		ack [3]uint64
	}{
		"a": {1, [3]uint64{1, 1, 1}},
		"b": {1, [3]uint64{2, 1, 1}},
		"c": {2, [3]uint64{2, 1, 1}},
		"d": {1, [3]uint64{3, 1, 2}},
		"e": {3, [3]uint64{3, 2, 2}},
		"f": {4, [3]uint64{4, 2, 2}},
		"g": {2, [3]uint64{4, 2, 2}},
		"h": {2, [3]uint64{5, 3, 2}},
	}
	for name, w := range want {
		p := res.PDUs[name]
		if p == nil {
			t.Fatalf("missing PDU %q", name)
		}
		if uint64(p.SEQ) != w.seq {
			t.Errorf("%s.SEQ = %d, want %d", name, p.SEQ, w.seq)
		}
		for i := range w.ack {
			if uint64(p.ACK[i]) != w.ack[i] {
				t.Errorf("%s.ACK = %v, want %v", name, p.ACK, w.ack)
				break
			}
		}
	}
	if got := strings.Join(res.PRL, " "); got != "c b d e" {
		t.Errorf("PRL = %q, want %q", got, "c b d e")
	}
	if len(res.Delivered) != 1 || res.Delivered[0] != "a" {
		t.Errorf("Delivered = %v, want [a]", res.Delivered)
	}
	out := res.Render()
	for _, frag := range []string{"Table 1", "<5,3,2>", "PRL"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8([]int{2, 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TcoNsPerPDU <= 0 {
			t.Errorf("n=%d: Tco = %v", r.N, r.TcoNsPerPDU)
		}
		if r.TapMean <= 0 {
			t.Errorf("n=%d: Tap = %v", r.N, r.TapMean)
		}
		// The paper's Figure 8 has Tap well above Tco at every n.
		if float64(r.TapMean.Nanoseconds()) < r.TcoNsPerPDU {
			t.Errorf("n=%d: Tap %v below Tco %.0fns", r.N, r.TapMean, r.TcoNsPerPDU)
		}
		t.Logf("n=%d: Tco=%.0fns/PDU Tap=%v", r.N, r.TcoNsPerPDU, r.TapMean)
	}
	// Tco is O(n) — the ACK/AL/PAL vectors scale with n — so over the 8×
	// size spread it may grow ~8× plus a constant, but never the ~64× an
	// O(n²) pipeline would show. With the incremental-minima pipeline the
	// linear term is small enough that Tco(16) can even dip below Tco(2)
	// in wall-clock noise, so only the upper bound is meaningful; the
	// benchmark suite reports the full curve.
	if rows[1].TcoNsPerPDU > 20*rows[0].TcoNsPerPDU {
		t.Errorf("Tco grew superlinearly from n=2 to n=16: %.0f -> %.0f",
			rows[0].TcoNsPerPDU, rows[1].TcoNsPerPDU)
	}
}

func TestMeasureTapVirtual(t *testing.T) {
	tap, err := MeasureTap(3, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Remote delivery needs at least one propagation plus confirmation
	// rounds: Tap must exceed 2R in virtual time.
	if tap < 2*time.Millisecond {
		t.Errorf("virtual Tap = %v, want >= 2ms", tap)
	}
}

func TestAckLatency2R(t *testing.T) {
	rows, err := AckLatency([]int{3, 5}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper predicts acknowledgment 2R after acceptance. The
		// deferred-ack timer quantizes the confirmation rounds, so allow
		// a generous band around 2.
		if r.RatioToR < 1.5 || r.RatioToR > 6 {
			t.Errorf("n=%d: accept→deliver = %v (%.2f R), want ≈ 2R",
				r.N, r.MeanAcceptToDeliver, r.RatioToR)
		}
	}
}

func TestBufferOccupancyBounded(t *testing.T) {
	rows, err := BufferOccupancy([]int{3, 5}, []int{2, 8}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxResident == 0 {
			t.Errorf("n=%d w=%d: zero occupancy", r.N, r.W)
		}
		// The paper's guideline is ≈ 2nW; allow slack for control PDUs.
		if r.MaxResident > 3*r.Bound2nW+4*r.N {
			t.Errorf("n=%d w=%d: MaxResident %d far beyond 2nW=%d",
				r.N, r.W, r.MaxResident, r.Bound2nW)
		}
	}
}

func TestPDULengthLinear(t *testing.T) {
	rows := PDULength([]int{2, 4, 8, 16})
	for i := 1; i < len(rows); i++ {
		dn := rows[i].N - rows[i-1].N
		db := rows[i].HeaderBytes - rows[i-1].HeaderBytes
		if db != 8*dn {
			t.Errorf("header growth %d bytes for %d entities, want %d", db, dn, 8*dn)
		}
		if rows[i].Bytes64 != rows[i].HeaderBytes+64 {
			t.Errorf("payload accounting wrong: %+v", rows[i])
		}
	}
}

func TestWireBytesV2Reduction(t *testing.T) {
	rows, err := WireBytes([]int{8, 16}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DTPDUs == 0 || r.V1BytesPerDT <= 0 || r.V2BytesPerDT <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		// PR 5's headline: delta stamps shed the O(n) ACK vector from
		// steady-state DT PDUs. Already at n=16 the reduction must
		// clear 50%; at n=64 the acceptance gate re-checks it.
		if r.N >= 16 && r.Reduction < 0.5 {
			t.Errorf("n=%d: v2 reduction %.1f%% (v1 %.1f B, v2 %.1f B), want >= 50%%",
				r.N, 100*r.Reduction, r.V1BytesPerDT, r.V2BytesPerDT)
		}
		if r.V2FullStamps == 0 || r.V2FullStamps >= r.DTPDUs {
			t.Errorf("n=%d: %d full stamps of %d DT PDUs — sync points or deltas missing",
				r.N, r.V2FullStamps, r.DTPDUs)
		}
	}
}

func TestRetxComparisonShape(t *testing.T) {
	rows, err := RetxComparison(4, 40, []float64{0.02, 0.2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rows[0], rows[1]
	// Both schemes retransmit more at higher loss.
	if hi.GBNRetransmissions <= lo.GBNRetransmissions {
		t.Errorf("go-back-n: %d -> %d retransmissions", lo.GBNRetransmissions, hi.GBNRetransmissions)
	}
	// The paper's headline: selective retransmission resends only lost
	// PDUs, go-back-n resends runs of delivered ones. At high loss the
	// go-back-n retransmission count must exceed CO's.
	if hi.CORetransmitted >= hi.GBNRetransmissions {
		t.Errorf("at 20%% loss: CO retransmitted %d, go-back-n %d — expected CO lower",
			hi.CORetransmitted, hi.GBNRetransmissions)
	}
}

func TestISISCostAndLossDemo(t *testing.T) {
	rows, err := ISISCost([]int{3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].CONsPerPDU <= 0 || rows[0].CBCASTNsPerMsg <= 0 {
		t.Errorf("degenerate costs: %+v", rows[0])
	}
	res, err := ISISLossDemo()
	if err != nil {
		t.Fatal(err)
	}
	if res.CORetRequests == 0 {
		t.Error("CO protocol did not detect the loss")
	}
	if res.CODelivered != 2 {
		t.Errorf("CO delivered %d/2 at the lossy entity", res.CODelivered)
	}
	if res.CBCASTDelivered != 0 || res.CBCASTHeld != 1 {
		t.Errorf("CBCAST should hold forever: delivered=%d held=%d",
			res.CBCASTDelivered, res.CBCASTHeld)
	}
}

func TestMessageComplexityLinear(t *testing.T) {
	rows, err := MessageComplexity([]int{2, 4, 8}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// O(n) claim is asymptotic — constant factors dominate tiny
		// clusters, so compare against n² only from n=4 up.
		if r.N >= 4 && r.PerMessage >= float64(r.NSquared) {
			t.Errorf("n=%d: %.1f PDUs per message, at or above n²=%d",
				r.N, r.PerMessage, r.NSquared)
		}
	}
	// Growth should look linear-ish: quadrupling n (2→8) should not
	// multiply per-message PDUs by anything near 16.
	if rows[2].PerMessage > 8*rows[0].PerMessage {
		t.Errorf("per-message PDUs grew superlinearly: %v -> %v",
			rows[0].PerMessage, rows[2].PerMessage)
	}
}

func TestAblationWindowShape(t *testing.T) {
	rows, err := AblationWindow(3, []int{1, 16}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny window must block submissions; a large one should not.
	if rows[0].FlowBlocked == 0 {
		t.Error("window 1 never blocked a saturating workload")
	}
	if rows[1].FlowBlocked > rows[0].FlowBlocked {
		t.Errorf("window 16 blocked more than window 1: %d vs %d",
			rows[1].FlowBlocked, rows[0].FlowBlocked)
	}
	if rows[1].CompletionVirtual > rows[0].CompletionVirtual {
		t.Errorf("larger window slower: %v vs %v",
			rows[1].CompletionVirtual, rows[0].CompletionVirtual)
	}
}

func TestAblationDeferredAckShape(t *testing.T) {
	rows, err := AblationDeferredAck(3, []time.Duration{time.Millisecond, 20 * time.Millisecond}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A coarser interval cannot finish faster.
	if rows[1].CompletionVirtual < rows[0].CompletionVirtual {
		t.Errorf("20ms interval finished before 1ms: %v vs %v",
			rows[1].CompletionVirtual, rows[0].CompletionVirtual)
	}
}

func TestAblationBufferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time experiment")
	}
	rows, err := AblationBuffer(3, []int{8, 1024}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Overruns == 0 {
		t.Log("note: tiny inbox produced no overruns this run (timing dependent)")
	}
	if rows[1].Overruns > rows[0].Overruns {
		t.Errorf("large inbox overran more than tiny one: %d vs %d",
			rows[1].Overruns, rows[0].Overruns)
	}
}

func TestServiceComparisonMatchesTaxonomy(t *testing.T) {
	rows, err := ServiceComparison()
	if err != nil {
		t.Fatal(err)
	}
	want := []ServiceRow{
		{Service: "LO (per-source FIFO)", Local: true, Causal: false, Total: false},
		{Service: "CO protocol", Local: true, Causal: true, Total: false},
		{Service: "CO + total order", Local: true, Causal: true, Total: true},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

// TestLemma42OnProtocolStreams checks Lemma 4.2 of the paper on PDUs
// from a real protocol run. The lemma claims p ≺ q implies p's ACK
// vector is dominated by q's. That holds unconditionally for same-source
// pairs (a sender's REQ vector is monotone), and this test asserts it.
// For cross-source pairs the lemma is FALSE in general — acceptance is
// per-source in-order only, so an entity can accept p while still
// missing PDUs p's sender had already seen, and its next PDU's ACK then
// fails to dominate p's. The deterministic run below contains such a
// counterexample, which the test pins down as documentation of the
// paper's overclaim (see the soundness note in DESIGN.md).
func TestLemma42OnProtocolStreams(t *testing.T) {
	seen := make(map[trace.MsgID]*pdu.PDU)
	c, err := simrun.New(simrun.Options{
		N:   4,
		Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond), sim.NetLossRate(0.05), sim.NetSeed(6)},
		PDUTap: func(_, _ pdu.EntityID, p *pdu.PDU) {
			if p.Kind.Sequenced() {
				id := trace.MsgID{Src: p.Src, Seq: p.SEQ}
				if _, ok := seen[id]; !ok {
					seen[id] = p.Clone()
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewContinuous(4, 6, 16))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var pdus []*pdu.PDU
	for _, p := range seen {
		pdus = append(pdus, p)
	}
	if len(pdus) < 20 {
		t.Fatalf("only %d distinct PDUs captured", len(pdus))
	}
	var samePairs, crossPairs, crossViolations int
	for _, p := range pdus {
		for _, q := range pdus {
			if p == q || !pdu.CausallyPrecedes(p, q) {
				continue
			}
			if p.Src == q.Src {
				samePairs++
				for i := range p.ACK {
					if p.ACK[i] > q.ACK[i] {
						t.Fatalf("Lemma 4.2(1) violated: %v ≺ %v but ACK[%d] %d > %d",
							p, q, i, p.ACK[i], q.ACK[i])
					}
				}
				continue
			}
			crossPairs++
			// Lemma 4.2(2)'s strict own-component claim does hold: the
			// test p ≺ q *is* q's sender having accepted p.
			if p.ACK[p.Src] >= q.ACK[p.Src] {
				t.Fatalf("own-component claim violated: %v ≺ %v", p, q)
			}
			for i := range p.ACK {
				if p.ACK[i] > q.ACK[i] {
					crossViolations++
					break
				}
			}
		}
	}
	if samePairs == 0 || crossPairs == 0 {
		t.Fatalf("degenerate run: %d same-source, %d cross-source pairs", samePairs, crossPairs)
	}
	// Pin the counterexample: this seeded lossy run demonstrably violates
	// the lemma's cross-source domination claim.
	if crossViolations == 0 {
		t.Error("expected the seeded run to exhibit the documented Lemma 4.2 counterexample")
	}
	t.Logf("pairs: %d same-source ok, %d cross-source (%d dominate, %d counterexamples)",
		samePairs, crossPairs, crossPairs-crossViolations, crossViolations)
}

// TestTheorem41AgreesWithGroundTruth verifies the forward direction of
// Theorem 4.1 against vector-clock ground truth on a traced run: whenever
// the sequence-number test says p ≺ q, the real causal order agrees.
func TestTheorem41AgreesWithGroundTruth(t *testing.T) {
	seen := make(map[trace.MsgID]*pdu.PDU)
	c, err := simrun.New(simrun.Options{
		N:     3,
		Trace: true,
		Net:   []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		PDUTap: func(_, _ pdu.EntityID, p *pdu.PDU) {
			if p.Kind.Sequenced() {
				id := trace.MsgID{Src: p.Src, Seq: p.SEQ}
				if _, ok := seen[id]; !ok {
					seen[id] = p.Clone()
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewContinuous(3, 6, 16))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for idP, p := range seen {
		for idQ, q := range seen {
			if p == q {
				continue
			}
			sp, sq := a.Stamp(idP), a.Stamp(idQ)
			if sp == nil || sq == nil {
				continue
			}
			if pdu.CausallyPrecedes(p, q) {
				checked++
				if !sp.Before(sq) {
					t.Fatalf("Theorem 4.1 says %v ≺ %v but stamps %v vs %v", p, q, sp, sq)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
}

func TestMessageComplexitySoloIsLinear(t *testing.T) {
	rows, err := MessageComplexity([]int{2, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	if small.SoloPDUs == 0 || large.SoloPDUs == 0 {
		t.Fatalf("solo counts missing: %+v", rows)
	}
	// O(n): quadrupling n should scale solo cost by roughly 4x, far
	// below the 16x of O(n²).
	ratio := float64(large.SoloPDUs) / float64(small.SoloPDUs)
	if ratio > 8 {
		t.Errorf("solo cost grew %0.1fx from n=2 to n=8 (superlinear)", ratio)
	}
	if large.SoloPDUs >= uint64(large.NSquared) {
		t.Errorf("solo cost %d at/above n²=%d", large.SoloPDUs, large.NSquared)
	}
}
