package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cobcast/internal/baseline/fifo"
	"cobcast/internal/core"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

// ServiceRow reports which ordering properties one service level
// delivered on the shared scenario of the taxonomy experiment.
type ServiceRow struct {
	Service string
	// Local, Causal, Total report whether the delivery orders satisfied
	// each property of Section 2.2/2.3.
	Local  bool
	Causal bool
	Total  bool
}

// ServiceComparison drives the paper's service taxonomy (§2.3,
// LO ⊂ CO ⊂ TO) through one shared hazard: concurrent senders plus a
// causal reply, over channels whose asymmetric delays reorder arrivals
// across sources. The LO baseline delivers per-source FIFO only (the PO
// protocol's service), the CO protocol preserves causality, and the
// total-order extension makes every sequence identical.
func ServiceComparison() ([]ServiceRow, error) {
	rows := make([]ServiceRow, 0, 3)

	lo, err := loServiceRow()
	if err != nil {
		return nil, err
	}
	rows = append(rows, lo)

	for _, mode := range []struct {
		name  string
		total bool
	}{{"CO protocol", false}, {"CO + total order", true}} {
		row, err := coServiceRow(mode.name, mode.total)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// loServiceRow replays the Figure 2 hazard through the FIFO (LO) baseline:
// entity 2 receives the causally later q before p and, with no causal
// machinery, delivers it first.
func loServiceRow() (ServiceRow, error) {
	es := make([]*fifo.Entity, 3)
	for i := range es {
		e, err := fifo.New(pdu.EntityID(i), 3)
		if err != nil {
			return ServiceRow{}, err
		}
		es[i] = e
	}
	rec := &trace.Recorder{}
	record := func(t trace.EventType, entity pdu.EntityID, m fifo.Message) {
		rec.Record(trace.Event{Type: t, Entity: entity,
			Msg: trace.MsgID{Src: m.Src, Seq: m.Seq}, Kind: pdu.KindData})
	}
	deliver := func(at pdu.EntityID, m fifo.Message) error {
		ds, err := es[at].Receive(m)
		if err != nil {
			return err
		}
		for _, d := range ds {
			record(trace.Accept, at, d)
			record(trace.Deliver, at, d)
		}
		return nil
	}

	p := es[0].Broadcast([]byte("p"))
	record(trace.Send, 0, p)
	record(trace.Deliver, 0, p)
	if err := deliver(1, p); err != nil {
		return ServiceRow{}, err
	}
	q := es[1].Broadcast([]byte("q")) // causally after p
	record(trace.Send, 1, q)
	record(trace.Deliver, 1, q)
	if err := deliver(0, q); err != nil {
		return ServiceRow{}, err
	}
	// The slow channel delivers q to entity 2 before p.
	if err := deliver(2, q); err != nil {
		return ServiceRow{}, err
	}
	if err := deliver(2, p); err != nil {
		return ServiceRow{}, err
	}

	a, err := trace.Analyze(rec.Events(), 3)
	if err != nil {
		return ServiceRow{}, err
	}
	return ServiceRow{
		Service: "LO (per-source FIFO)",
		Local:   a.CheckLocalOrderPreserved() == nil,
		Causal:  a.CheckCausalOrderPreserved() == nil,
		Total:   a.CheckTotalOrderPreserved() == nil,
	}, nil
}

// coServiceRow runs concurrent senders plus causal replies through the
// full protocol over asymmetric channels.
func coServiceRow(name string, total bool) (ServiceRow, error) {
	c, err := simrun.New(simrun.Options{
		N:     3,
		Trace: true,
		Core:  core.Config{TotalOrder: total},
		Net: []sim.NetOption{
			sim.NetSeed(2),
			sim.NetDelay(asymmetricDelay),
		},
	})
	if err != nil {
		return ServiceRow{}, err
	}
	// Concurrent bursts from every entity, interleaved over time so both
	// concurrent and causally related pairs occur.
	c.LoadWorkload(workload.NewContinuous(3, 5, 16))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		return ServiceRow{}, fmt.Errorf("%s: %w", name, err)
	}
	a, err := c.Analyze()
	if err != nil {
		return ServiceRow{}, err
	}
	return ServiceRow{
		Service: name,
		Local:   a.CheckLocalOrderPreserved() == nil,
		Causal:  a.CheckCausalOrderPreserved() == nil,
		Total:   a.CheckTotalOrderPreserved() == nil,
	}, nil
}

// asymmetricDelay gives each directed channel a distinct latency so
// arrivals interleave differently at every entity.
func asymmetricDelay(from, to pdu.EntityID, _ *rand.Rand) time.Duration {
	return time.Duration(1+(int(from)*3+int(to)*7)%5) * time.Millisecond
}
