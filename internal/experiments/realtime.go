package experiments

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"cobcast"
)

// MeasureTapRealtime measures the paper's Tap — application-to-
// application transmission delay — on the real-time in-process cluster:
// every node broadcasts perSender messages ("continuously like the file
// transfer"), and the mean Broadcast-to-delivery wall-clock delay over
// every (message, destination) pair is returned.
func MeasureTapRealtime(n, perSender int) (time.Duration, error) {
	c, err := cobcast.NewCluster(n,
		cobcast.WithDeferredAckInterval(200*time.Microsecond),
		cobcast.WithRetransmitTimeout(2*time.Millisecond),
	)
	if err != nil {
		return 0, err
	}
	defer c.Close()

	total := n * perSender
	var (
		mu        sync.Mutex
		sendTimes = make(map[uint64]time.Time, total)
		sum       time.Duration
		samples   int
	)
	key := func(src int, idx uint64) uint64 { return uint64(src)<<40 | idx }

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		nd := c.Node(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			timeout := time.After(60 * time.Second)
			for seen < total {
				select {
				case m, ok := <-nd.Deliveries():
					if !ok {
						errs <- fmt.Errorf("tap: deliveries closed at %d/%d", seen, total)
						return
					}
					now := time.Now()
					idx := binary.BigEndian.Uint64(m.Data[4:])
					mu.Lock()
					if at, ok := sendTimes[key(m.Src, idx)]; ok {
						sum += now.Sub(at)
						samples++
					}
					mu.Unlock()
					seen++
				case <-timeout:
					errs <- fmt.Errorf("tap: timeout at %d/%d (stats %+v)", seen, total, nd.Stats())
					return
				}
			}
			errs <- nil
		}()
	}

	payload := make([]byte, 64)
	for idx := 0; idx < perSender; idx++ {
		for src := 0; src < n; src++ {
			binary.BigEndian.PutUint32(payload, uint32(src))
			binary.BigEndian.PutUint64(payload[4:], uint64(idx))
			mu.Lock()
			sendTimes[key(src, uint64(idx))] = time.Now()
			mu.Unlock()
			if err := c.Broadcast(src, payload); err != nil {
				c.Close()
				wg.Wait()
				return 0, err
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if samples == 0 {
		return 0, fmt.Errorf("tap: no samples")
	}
	return sum / time.Duration(samples), nil
}
