package experiments

import (
	"fmt"
	"time"

	"cobcast"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/workload"
)

// WindowRow is one point of ablation A1: the effect of the flow-control
// window W on throughput and latency.
type WindowRow struct {
	W int
	// CompletionVirtual is the virtual time to deliver the whole
	// workload everywhere.
	CompletionVirtual time.Duration
	// TapMean is the mean broadcast-to-delivery delay.
	TapMean time.Duration
	// FlowBlocked counts submissions that waited for the window.
	FlowBlocked uint64
}

// AblationWindow sweeps the window size under a saturating workload.
func AblationWindow(n int, ws []int, perSender int) ([]WindowRow, error) {
	rows := make([]WindowRow, 0, len(ws))
	for _, w := range ws {
		c, err := simrun.New(simrun.Options{
			N:    n,
			Core: core.Config{Window: pdu.Seq(w)},
			Net:  []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		})
		if err != nil {
			return nil, err
		}
		c.LoadWorkload(workload.NewContinuous(n, perSender, 32))
		done, err := c.RunToQuiescence(deadline)
		if err != nil {
			return nil, fmt.Errorf("ablation window=%d: %w", w, err)
		}
		samples := c.TapSamples()
		var sum time.Duration
		for _, d := range samples {
			sum += d
		}
		var mean time.Duration
		if len(samples) > 0 {
			mean = sum / time.Duration(len(samples))
		}
		rows = append(rows, WindowRow{
			W:                 w,
			CompletionVirtual: done,
			TapMean:           mean,
			FlowBlocked:       c.TotalStats().FlowBlocked,
		})
	}
	return rows, nil
}

// DeferRow is one point of ablation A2: the deferred-ack interval trades
// confirmation traffic against acknowledgment latency.
type DeferRow struct {
	Interval time.Duration
	// TotalPDUs counts every PDU broadcast during the run.
	TotalPDUs uint64
	// CompletionVirtual is the virtual time to quiescence.
	CompletionVirtual time.Duration
}

// AblationDeferredAck sweeps the deferred confirmation interval with a
// sparse workload, where confirmation timing dominates.
func AblationDeferredAck(n int, intervals []time.Duration, msgs int) ([]DeferRow, error) {
	rows := make([]DeferRow, 0, len(intervals))
	for _, iv := range intervals {
		c, err := simrun.New(simrun.Options{
			N:    n,
			Core: core.Config{DeferredAckInterval: iv},
			Net:  []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		})
		if err != nil {
			return nil, err
		}
		c.LoadWorkload(workload.NewInteractive(n, msgs, 32, 10*time.Millisecond, 1))
		done, err := c.RunToQuiescence(deadline)
		if err != nil {
			return nil, fmt.Errorf("ablation defer=%v: %w", iv, err)
		}
		st := c.TotalStats()
		rows = append(rows, DeferRow{
			Interval:          iv,
			TotalPDUs:         st.DataSent + st.SyncSent + st.AckOnlySent + st.RetSent,
			CompletionVirtual: done,
		})
	}
	return rows, nil
}

// BufferAblRow is one point of ablation A3: shrinking the receive inbox
// on the real-time in-memory network induces buffer-overrun loss, which
// the protocol repairs at the cost of retransmissions.
type BufferAblRow struct {
	InboxCap int
	// Overruns counts PDUs dropped at full inboxes; Retransmitted counts
	// the repairs.
	Overruns      uint64
	Retransmitted uint64
	// Wall is the real time the cluster needed to deliver everything.
	Wall time.Duration
}

// AblationBuffer runs the public real-time cluster with varying inbox
// capacities. Unlike the virtual-time experiments this measures wall
// clock, so absolute numbers vary run to run; the shape (smaller inbox →
// more overruns → more retransmissions) is the result.
func AblationBuffer(n int, caps []int, msgs int) ([]BufferAblRow, error) {
	rows := make([]BufferAblRow, 0, len(caps))
	for _, cap := range caps {
		c, err := cobcast.NewCluster(n,
			cobcast.WithInboxCapacity(cap),
			cobcast.WithDeferredAckInterval(time.Millisecond),
			cobcast.WithRetransmitTimeout(5*time.Millisecond),
		)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < msgs; i++ {
			if err := c.Broadcast(i%n, make([]byte, 32)); err != nil {
				c.Close()
				return nil, err
			}
		}
		ok := make(chan error, n)
		for i := 0; i < n; i++ {
			nd := c.Node(i)
			go func() {
				count := 0
				timeout := time.After(60 * time.Second)
				for count < msgs {
					select {
					case _, open := <-nd.Deliveries():
						if !open {
							ok <- fmt.Errorf("deliveries closed at %d/%d", count, msgs)
							return
						}
						count++
					case <-timeout:
						ok <- fmt.Errorf("timeout at %d/%d (stats %+v)", count, msgs, nd.Stats())
						return
					}
				}
				ok <- nil
			}()
		}
		for i := 0; i < n; i++ {
			if err := <-ok; err != nil {
				c.Close()
				return nil, fmt.Errorf("ablation inbox=%d: %w", cap, err)
			}
		}
		wall := time.Since(start)
		var retx uint64
		for i := 0; i < n; i++ {
			retx += c.Node(i).Stats().Retransmitted
		}
		net := c.NetworkStats()
		c.Close()
		rows = append(rows, BufferAblRow{
			InboxCap:      cap,
			Overruns:      net.DroppedOverrun,
			Retransmitted: retx,
			Wall:          wall,
		})
	}
	return rows, nil
}
