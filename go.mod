module cobcast

go 1.22
