GO ?= go

# The benchmarks pinned by the latest BENCH_PR*.json "benchmarks" map;
# benchdiff reruns exactly these. SnapshotInto lives in internal/core.
BENCHDIFF_PATTERN = HotPath|Fig8Tco|FrameCodec|MarshalAppend$$|MultiGroupThroughput

.PHONY: check vet build test race bench benchdiff

## check: the full pre-merge gate (vet + build + race tests + bench smoke)
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: every paper table/figure benchmark with allocation stats
bench:
	$(GO) test . -run '^$$' -bench . -benchmem

## benchdiff: opt-in perf gate — rerun the pinned hot-path benchmarks
## and diff against the latest BENCH_PR*.json baseline; >10% ns/op or
## any allocs/op growth fails. Also reachable via BENCHDIFF=1 make check.
benchdiff:
	@tmp=$$(mktemp); trap "rm -f $$tmp" EXIT; \
	$(GO) test . -run '^$$' -bench '$(BENCHDIFF_PATTERN)' -benchtime 0.5s -benchmem > $$tmp && \
	$(GO) test ./internal/core -run '^$$' -bench 'SnapshotInto' -benchtime 0.5s -benchmem >> $$tmp && \
	$(GO) test ./internal/flight -run '^$$' -bench 'Record' -benchtime 0.5s -benchmem >> $$tmp && \
	$(GO) run ./scripts/benchdiff -input $$tmp
