GO ?= go

.PHONY: check vet build test race bench

## check: the full pre-merge gate (vet + build + race tests + bench smoke)
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: every paper table/figure benchmark with allocation stats
bench:
	$(GO) test . -run '^$$' -bench . -benchmem
