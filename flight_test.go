package cobcast_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"cobcast"
	"cobcast/internal/cospan"
	"cobcast/internal/flight"
	"cobcast/obsv"
)

// TestTracezLiveScrape hammers /tracez while a lossy cluster is under
// load. Under -race this is the seqlock check for the flight rings: the
// node loops (and producer goroutines) record concurrently with the
// scrapers' snapshots, and every scrape must decode to a consistent
// document.
func TestTracezLiveScrape(t *testing.T) {
	const (
		nodes = 3
		msgs  = 120
	)
	reg := obsv.NewRegistry()
	cluster, err := cobcast.NewCluster(nodes,
		cobcast.WithLossRate(0.1),
		cobcast.WithSeed(11),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	srv, err := obsv.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	scraperErr := make(chan error, 1)
	go func() {
		defer close(scraperErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + srv.Addr() + "/tracez")
			if err != nil {
				scraperErr <- err
				return
			}
			var doc obsv.Tracez
			err = json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				scraperErr <- fmt.Errorf("tracez decode: %w", err)
				return
			}
			for _, nf := range doc.Nodes {
				if len(nf.Events) > nf.Capacity {
					scraperErr <- fmt.Errorf("node %s: %d events over capacity %d", nf.Node, len(nf.Events), nf.Capacity)
					return
				}
				for _, ev := range nf.Events {
					if flight.TypeFromName(ev.TypeName) == 0 {
						scraperErr <- fmt.Errorf("node %s: unknown event type %q", nf.Node, ev.TypeName)
						return
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		nd := cluster.Node(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			deadline := time.After(time.Minute)
			for seen < msgs {
				select {
				case _, ok := <-nd.Deliveries():
					if !ok {
						t.Error("deliveries closed early")
						return
					}
					seen++
				case <-deadline:
					t.Errorf("node %d: timeout at %d/%d", nd.ID(), seen, msgs)
					return
				}
			}
		}()
	}
	for i := 0; i < msgs; i++ {
		if err := cluster.Broadcast(i%nodes, []byte("flight")); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(stop)
	if err := <-scraperErr; err != nil {
		t.Fatal(err)
	}

	// The final dump must hold every node's ring with the full lifecycle
	// vocabulary present somewhere.
	doc := reg.Tracez()
	if len(doc.Nodes) != nodes {
		t.Fatalf("tracez has %d rings, want %d", len(doc.Nodes), nodes)
	}
	seenTypes := map[string]bool{}
	for _, nf := range doc.Nodes {
		if nf.Recorded == 0 {
			t.Errorf("node %s recorded nothing", nf.Node)
		}
		if nf.EpochUnixNano == 0 {
			t.Errorf("node %s has no wall-clock epoch", nf.Node)
		}
		for _, ev := range nf.Events {
			seenTypes[ev.TypeName] = true
		}
	}
	for _, want := range []string{"submit", "sequence", "wire-out", "wire-in", "accept", "commit", "deliver"} {
		if !seenTypes[want] {
			t.Errorf("no %q event recorded anywhere", want)
		}
	}
}

// lossyTransport drops a fraction of outgoing datagrams before they
// reach the UDP socket. It deliberately hides the transport's batch
// extension so every datagram passes through the dropping Broadcast.
type lossyTransport struct {
	cobcast.Transport
	mu  sync.Mutex
	rng *rand.Rand
	p   float64
}

func (l *lossyTransport) Broadcast(d []byte) error {
	l.mu.Lock()
	drop := l.rng.Float64() < l.p
	l.mu.Unlock()
	if drop {
		return nil
	}
	return l.Transport.Broadcast(d)
}

// TestTracezUDPLossySpans is the tracing acceptance path: a 3-node
// cluster over real UDP loopback with 20% send loss, scraped over HTTP
// exactly as `cotrace live` does, assembled into a Chrome trace. The
// run must show at least one retransmitted message, and every message
// must have a complete lifecycle span on every node with causal flow
// arrows from its origin.
func TestTracezUDPLossySpans(t *testing.T) {
	const n = 3
	const msgs = 12
	regs := make([]*obsv.Registry, n)

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		addrs[i] = tr.LocalAddr()
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	nodes := make([]*cobcast.Node, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		var peers []string
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, addrs[j])
			}
		}
		tr, err := cobcast.NewUDPTransport(addrs[i], peers, 0)
		if err != nil {
			t.Fatalf("rebind %d: %v", i, err)
		}
		lossy := &lossyTransport{Transport: tr, rng: rand.New(rand.NewSource(int64(i + 1))), p: 0.2}
		regs[i] = obsv.NewRegistry()
		nd, err := cobcast.NewNode(i, n, lossy,
			cobcast.WithDeferredAckInterval(2*time.Millisecond),
			cobcast.WithRetransmitTimeout(8*time.Millisecond),
			cobcast.WithObservability(regs[i]),
		)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = nd
		t.Cleanup(func() { nd.Close() })
		srv, err := obsv.Serve(regs[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		urls[i] = "http://" + srv.Addr()
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nd := nodes[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			deadline := time.After(time.Minute)
			for seen < msgs {
				select {
				case <-nd.Deliveries():
					seen++
				case <-deadline:
					t.Errorf("node %d delivered %d/%d (stats %+v)", nd.ID(), seen, msgs, nd.Stats())
					return
				}
			}
		}()
	}
	for i := 0; i < msgs; i++ {
		if err := nodes[i%n].Broadcast([]byte(fmt.Sprintf("lossy-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Let the trailing wire-out/deliver events land in the rings.
	time.Sleep(50 * time.Millisecond)

	var retx uint64
	for _, nd := range nodes {
		retx += nd.Stats().Retransmitted
	}
	if retx == 0 {
		t.Fatal("20% loss produced no retransmissions; the lifecycle test would be vacuous")
	}

	// Scrape each endpoint as cotrace live does and merge.
	var dumps []obsv.NodeFlight
	for _, u := range urls {
		resp, err := http.Get(u + "/tracez")
		if err != nil {
			t.Fatal(err)
		}
		var doc obsv.Tracez
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, doc.Nodes...)
	}
	if len(dumps) != n {
		t.Fatalf("merged %d rings, want %d", len(dumps), n)
	}

	events := cospan.Assemble(dumps)
	slices := map[string]map[int]bool{} // msg -> pids with a DATA slice
	flows := map[string]int{}
	retEvents := 0
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			if ev.Args["kind"] == "DATA" {
				if slices[ev.Name] == nil {
					slices[ev.Name] = map[int]bool{}
				}
				slices[ev.Name][ev.Pid] = true
			}
		case "f":
			flows[ev.Name]++
		case "i":
			retEvents++
		}
	}
	full := 0
	for name, pids := range slices {
		if len(pids) == n {
			full++
		}
		if flows[name] < n-1 {
			t.Errorf("message %s has %d flow arrows, want >= %d", name, flows[name], n-1)
		}
	}
	if full < msgs {
		t.Errorf("only %d messages span all %d nodes, want %d", full, n, msgs)
	}
}

// TestStallAnalyzerNamesIsolatedPeerLive isolates one node of a live
// cluster mid-run and asserts the stall analyzer on /statez names the
// stuck message and the exact missing-ACK peer.
func TestStallAnalyzerNamesIsolatedPeerLive(t *testing.T) {
	const n = 3
	const isolated = 2
	reg := obsv.NewRegistry()
	cluster, err := cobcast.NewCluster(n,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < n; i++ {
		nd := cluster.Node(i)
		go func() {
			for range nd.Deliveries() {
			}
		}()
	}

	cluster.Isolate(isolated)
	if err := cluster.Broadcast(0, []byte("stuck")); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(30 * time.Second)
	for {
		stalls := reg.StallReport()
		var hit *obsv.Stall
		for i := range stalls {
			if stalls[i].Node == "0" && stalls[i].Msg == "s0#1" {
				hit = &stalls[i]
				break
			}
		}
		if hit != nil {
			want := strconv.Itoa(isolated)
			found := false
			for _, w := range hit.WaitingOn {
				if strconv.Itoa(w) == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("stall %+v does not name isolated peer %d", *hit, isolated)
			}
			// The verdict also appears on the /statez document itself.
			statez := reg.Statez()
			if len(statez.Stalls) == 0 {
				t.Fatal("statez document carries no stall verdicts")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("no stall verdict for s0#1 on node 0; report: %+v", stalls)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
