package cobcast_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cobcast"
	"cobcast/obsv"
)

// drainNode discards a node's deliveries for the test's lifetime so the
// unbounded delivery queue does not hide what the protocol logs retain.
func drainNode(t *testing.T, nd *cobcast.Node) {
	t.Helper()
	done := make(chan struct{})
	t.Cleanup(func() { <-done })
	go func() {
		defer close(done)
		for range nd.Deliveries() {
		}
	}()
}

// ledgerSnapshot finds node label's snapshot in the registry's /statez
// document; ok is false when the node produced no snapshot this scrape.
func ledgerSnapshot(reg *obsv.Registry, label string) (obsv.StateSnapshot, bool) {
	for _, s := range reg.Statez().Nodes {
		if s.Node == label {
			return s, true
		}
	}
	return obsv.StateSnapshot{}, false
}

// overloadOptions is the shared overload scenario: a tiny budget, a fast
// confirmation cycle, and a suspicion timer long enough that the stalled
// peer stays un-evicted for the saturation phase of each test.
func overloadOptions(extra ...cobcast.Option) []cobcast.Option {
	opts := []cobcast.Option{
		cobcast.WithMemoryBudget(8 << 10),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(2 * time.Millisecond),
	}
	return append(opts, extra...)
}

// saturate broadcasts payloads until the send errors with want (nil
// means "submit n messages, all must succeed"). It returns the number
// of successful submissions.
func saturate(t *testing.T, send func([]byte) error, payload []byte, max int, want error) int {
	t.Helper()
	sent := 0
	for i := 0; i < max; i++ {
		err := send(payload)
		if err == nil {
			sent++
			continue
		}
		if want != nil && errors.Is(err, want) {
			return sent
		}
		t.Fatalf("broadcast %d: %v", i, err)
	}
	if want != nil {
		t.Fatalf("budget never exhausted after %d sends", max)
	}
	return sent
}

// TestBroadcastContextCancelUnblocks pins the block-mode contract:
// a producer blocked on an exhausted memory budget is unblocked by
// context cancellation and gets ctx.Err(), not a protocol error.
func TestBroadcastContextCancelUnblocks(t *testing.T) {
	reg := obsv.NewRegistry()
	c, err := cobcast.NewCluster(2, overloadOptions(cobcast.WithObservability(reg))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	drainNode(t, c.Node(0))
	drainNode(t, c.Node(1))
	c.Isolate(1) // peer stalls: nothing node 0 sends is ever confirmed

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	payload := make([]byte, 1024)
	blocked := make(chan error, 1)
	go func() {
		for {
			if err := c.Node(0).BroadcastContext(ctx, payload); err != nil {
				blocked <- err
				return
			}
		}
	}()

	// Wait until the producer is observably blocked at the budget (the
	// blocked counter rides the ledger, scraped via /statez).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, ok := ledgerSnapshot(reg, "0"); ok && s.BackpressureBlocked > 0 {
			if s.LedgerBudget == 0 {
				t.Fatal("snapshot carries no ledger budget")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("producer never blocked at the memory budget")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-blocked:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked producer returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock the producer")
	}
}

// TestShedModeReturnsTypedError pins shed mode: an exhausted budget
// fails Broadcast with ErrOverBudget, and — because shedding happens
// strictly before sequencing — the protocol state is intact: once the
// stalled peer heals, everything already sequenced plus a fresh message
// still delivers everywhere in order.
func TestShedModeReturnsTypedError(t *testing.T) {
	c, err := cobcast.NewCluster(2, overloadOptions(
		cobcast.WithBackpressure(cobcast.BackpressureShed))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Isolate(1)

	payload := make([]byte, 1024)
	sent := saturate(t, c.Node(0).Broadcast, payload, 100000, cobcast.ErrOverBudget)
	if sent == 0 {
		t.Fatal("no submission succeeded before the budget tripped")
	}

	// Heal the peer; the shed submissions were never sequenced, so the
	// cluster must converge on exactly the accepted ones plus one more.
	c.Rejoin(1)
	if err := c.Node(0).WaitIdle(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Broadcast([]byte("after-shed")); err != nil {
		t.Fatalf("broadcast after drain: %v", err)
	}
	got := collectAll(t, c, sent+1)
	for i, ms := range got {
		for j, m := range ms {
			if m.Src != 0 {
				t.Fatalf("node %d message %d from unexpected source %d", i, j, m.Src)
			}
		}
		if last := ms[len(ms)-1]; string(last.Data) != "after-shed" {
			t.Fatalf("node %d final delivery = %q, want the post-shed message", i, last.Data)
		}
		for j := 1; j < len(ms); j++ {
			if ms[j].Seq <= ms[j-1].Seq {
				t.Fatalf("node %d: per-source order violated: %d after %d", i, ms[j].Seq, ms[j-1].Seq)
			}
		}
	}
}

// TestPerGroupBudgetsUnderShards pins that budgets compose with the
// sharded group runtime: exhausting one group's budget sheds only that
// group's producers, while sibling groups (their own ledgers) and the
// default group keep accepting.
func TestPerGroupBudgetsUnderShards(t *testing.T) {
	cases := []struct {
		name   string
		shards int
	}{
		{"one-shard", 1},
		{"four-shards", 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := cobcast.NewCluster(2, overloadOptions(
				cobcast.WithBackpressure(cobcast.BackpressureShed),
				cobcast.WithGroupShards(tc.shards))...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.Isolate(1)

			hot := c.Group(0, cobcast.Group("hot"))
			cold := c.Group(0, cobcast.Group("cold"))
			payload := make([]byte, 1024)
			if got := saturate(t, hot.Broadcast, payload, 100000, cobcast.ErrOverBudget); got == 0 {
				t.Fatal("hot group accepted nothing before shedding")
			}

			// The hot group now sheds immediately…
			if err := hot.Broadcast(payload); !errors.Is(err, cobcast.ErrOverBudget) {
				t.Fatalf("hot group: %v, want ErrOverBudget", err)
			}
			// …while the cold group and the default group, each with
			// their own ledger, still admit.
			for i := 0; i < 4; i++ {
				if err := cold.Broadcast([]byte(fmt.Sprintf("cold-%d", i))); err != nil {
					t.Fatalf("cold group broadcast %d: %v", i, err)
				}
				if err := c.Node(0).Broadcast([]byte(fmt.Sprintf("default-%d", i))); err != nil {
					t.Fatalf("default group broadcast %d: %v", i, err)
				}
			}
		})
	}
}
