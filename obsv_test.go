package cobcast_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cobcast"
	"cobcast/internal/obsv/promtext"
	"cobcast/obsv"
)

// TestClusterObservabilityLive runs a lossy real-time cluster with the
// registry attached and scrapes /metrics and /statez continuously while
// traffic flows. Under -race this is the torn-state check for the node
// snapshot channel and every atomic counter; the assertions also pin
// the snapshots' internal consistency mid-run.
func TestClusterObservabilityLive(t *testing.T) {
	const (
		nodes = 3
		msgs  = 120
	)
	reg := obsv.NewRegistry()
	cluster, err := cobcast.NewCluster(nodes,
		cobcast.WithLossRate(0.1),
		cobcast.WithSeed(11),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	srv, err := obsv.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scraper: hammer the endpoint for the whole run.
	stop := make(chan struct{})
	scraperErr := make(chan error, 1)
	go func() {
		defer close(scraperErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + srv.Addr() + "/metrics")
			if err != nil {
				scraperErr <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				scraperErr <- err
				return
			}
			if _, err := promtext.Parse(strings.NewReader(string(body))); err != nil {
				scraperErr <- err
				return
			}
			statez := reg.Statez()
			for _, s := range statez.Nodes {
				if len(s.REQ) != nodes || len(s.MinAL) != nodes || len(s.RRL) != nodes {
					scraperErr <- errTorn(s)
					return
				}
				if s.BufFree > s.BufUnits {
					scraperErr <- errTorn(s)
					return
				}
			}
		}
	}()

	// Traffic: every node broadcasts, every node consumes.
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		nd := cluster.Node(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			deadline := time.After(time.Minute)
			for seen < msgs {
				select {
				case _, ok := <-nd.Deliveries():
					if !ok {
						t.Error("deliveries closed early")
						return
					}
					seen++
				case <-deadline:
					t.Errorf("node %d: timeout at %d/%d", nd.ID(), seen, msgs)
					return
				}
			}
		}()
	}
	payload := make([]byte, 16)
	for i := 0; i < msgs; i++ {
		binary.BigEndian.PutUint64(payload, uint64(i))
		if err := cluster.Broadcast(i%nodes, payload); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(stop)
	if err := <-scraperErr; err != nil {
		t.Fatal(err)
	}

	// After the run the registry totals cover the whole cluster.
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("final scrape invalid: %v", err)
	}
	if v, _ := fams.Value("cobcast_delivered_total", nil); v < float64(msgs*nodes) {
		t.Errorf("delivered_total %v < %d", v, msgs*nodes)
	}
	if v, ok := fams.Value("cobcast_link_flushed_pdus_total", nil); !ok || v == 0 {
		t.Error("link metrics did not record any flushes")
	}
	if v, ok := fams.Value("cobcast_net_pdus_dropped_total", map[string]string{"cause": "loss"}); !ok || v == 0 {
		t.Errorf("lossy network recorded no losses (%v, %v)", v, ok)
	}
}

type errTorn obsv.StateSnapshot

func (e errTorn) Error() string { return "torn snapshot observed" }

// TestNodeStatsMatchRegistry cross-checks the public Stats API against
// the registry counters for a real-time cluster.
func TestNodeStatsMatchRegistry(t *testing.T) {
	reg := obsv.NewRegistry()
	cluster, err := cobcast.NewCluster(2,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < 10; i++ {
		if err := cluster.Broadcast(i%2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		nd := cluster.Node(i)
		for seen := 0; seen < 10; seen++ {
			select {
			case <-nd.Deliveries():
			case <-time.After(10 * time.Second):
				t.Fatalf("node %d: timeout at %d/10", i, seen)
			}
		}
	}
	// Quiesce so the final publishStats has run for the last input.
	time.Sleep(20 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var wantDelivered uint64
	for i := 0; i < 2; i++ {
		wantDelivered += cluster.Node(i).Stats().Delivered
	}
	if v, _ := fams.Value("cobcast_delivered_total", nil); uint64(v) != wantDelivered {
		t.Errorf("registry delivered %v, Stats sum %d", v, wantDelivered)
	}
}
