package cobcast_test

import (
	"runtime"
	"testing"
	"time"

	"cobcast"
)

// waitGoroutines polls until the goroutine count drops to at most want or
// the deadline passes, returning the final count. Polling avoids flakes
// from goroutines still unwinding after Close returns.
func waitGoroutines(want int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(end) {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterCloseReleasesGoroutines guards the style-guide rule that
// every spawned goroutine has an owner that can stop it: creating and
// closing clusters repeatedly must not accumulate goroutines.
func TestClusterCloseReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		c, err := cobcast.NewCluster(4,
			cobcast.WithDeferredAckInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := c.Broadcast(i, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		// Drain one node a bit, then shut down mid-flight.
		select {
		case <-c.Node(0).Deliveries():
		case <-time.After(time.Second):
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitGoroutines(baseline+2, 5*time.Second); got > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
}

// heapInuse forces a collection and reports runtime.MemStats.HeapInuse.
func heapInuse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// waitHeapBelow polls like waitGoroutines until HeapInuse drops to at
// most limit or the deadline passes, returning the final reading.
// Polling absorbs the lag between protocol-level drain and the GC
// actually returning spans.
func waitHeapBelow(limit uint64, deadline time.Duration) uint64 {
	end := time.Now().Add(deadline)
	for {
		h := heapInuse()
		if h <= limit || time.Now().After(end) {
			return h
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHeapCeilingUnderSaturateDrainCycles is the heap-level companion to
// the goroutine leak tests: with a memory budget in shed mode, repeated
// saturate→drain cycles against a stalled peer must leave HeapInuse
// within a fixed factor of the post-warm-up baseline. Without the ledger
// releasing every retention site (send log, pipeline, parked, pending
// submits, release queue) the per-cycle residue compounds and blows
// through the ceiling.
func TestHeapCeilingUnderSaturateDrainCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("heap soak: skipped in -short")
	}
	c, err := cobcast.NewCluster(3,
		cobcast.WithMemoryBudget(64<<10),
		cobcast.WithBackpressure(cobcast.BackpressureShed),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		go func(ch <-chan cobcast.Message) {
			for range ch {
			}
		}(c.Node(i).Deliveries())
	}

	payload := make([]byte, 1024)
	cycle := func() {
		c.Isolate(2)
		// Saturate: push until the budget sheds, then a little more so
		// every cycle exercises the shed path, not just the first.
		shed := 0
		for i := 0; i < 10000 && shed < 10; i++ {
			if err := c.Node(0).Broadcast(payload); err != nil {
				shed++
			}
		}
		if shed == 0 {
			t.Fatal("budget never shed during saturation")
		}
		c.Rejoin(2)
		if err := c.Node(0).WaitIdle(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Warm-up cycle: populates every pool and lazily allocated structure
	// before the baseline is taken.
	cycle()
	baseline := heapInuse()
	// HeapInuse is spiky at small absolute sizes; 3x the post-warm-up
	// baseline (floored at 8 MiB) is far above steady-state noise yet far
	// below what even one cycle of leaked retention would accumulate.
	limit := 3 * baseline
	if floor := uint64(8 << 20); limit < floor {
		limit = floor
	}
	for round := 0; round < 4; round++ {
		cycle()
		if got := waitHeapBelow(limit, 10*time.Second); got > limit {
			t.Fatalf("round %d: HeapInuse %d exceeds ceiling %d (baseline %d)",
				round, got, limit, baseline)
		}
	}
}

// TestUDPNodeCloseReleasesGoroutines does the same over the UDP
// transport.
func TestUDPNodeCloseReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := cobcast.NewNode(0, 2, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := nd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitGoroutines(baseline+2, 5*time.Second); got > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
}
