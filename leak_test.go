package cobcast_test

import (
	"runtime"
	"testing"
	"time"

	"cobcast"
)

// waitGoroutines polls until the goroutine count drops to at most want or
// the deadline passes, returning the final count. Polling avoids flakes
// from goroutines still unwinding after Close returns.
func waitGoroutines(want int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(end) {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterCloseReleasesGoroutines guards the style-guide rule that
// every spawned goroutine has an owner that can stop it: creating and
// closing clusters repeatedly must not accumulate goroutines.
func TestClusterCloseReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		c, err := cobcast.NewCluster(4,
			cobcast.WithDeferredAckInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := c.Broadcast(i, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		// Drain one node a bit, then shut down mid-flight.
		select {
		case <-c.Node(0).Deliveries():
		case <-time.After(time.Second):
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitGoroutines(baseline+2, 5*time.Second); got > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
}

// TestUDPNodeCloseReleasesGoroutines does the same over the UDP
// transport.
func TestUDPNodeCloseReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := cobcast.NewNode(0, 2, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := nd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitGoroutines(baseline+2, 5*time.Second); got > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
}
