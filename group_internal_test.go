package cobcast

import (
	"fmt"
	"testing"

	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

func TestGroupMetricsSlotBounded(t *testing.T) {
	nd := &Node{}
	for i := 0; i < statezGroupLimit; i++ {
		if !nd.groupMetricsSlot() {
			t.Fatalf("slot %d refused below the bound", i)
		}
	}
	for i := 0; i < 4; i++ {
		if nd.groupMetricsSlot() {
			t.Fatal("slot granted past the bound")
		}
	}
}

// nullBatchTransport swallows frames so only the shard-side staging code
// runs; it implements BatchTransport to exercise the staged-batch path.
type nullBatchTransport struct{ broadcasts, batches int }

func (tr *nullBatchTransport) Broadcast([]byte) error { tr.broadcasts++; return nil }
func (tr *nullBatchTransport) BroadcastBatch(b [][]byte) error {
	tr.batches++
	return nil
}
func (tr *nullBatchTransport) Recv() <-chan []byte { return nil }
func (tr *nullBatchTransport) Close() error        { return nil }

// TestGroupFramesSteadyStateAllocs requires the multi-group send hot
// path — Append onto per-group in-progress frames, Flush sealing one
// frame per group into one staged batch — to be allocation-free once
// the per-group states and build buffers exist. This is the group-path
// analogue of the wireLink/mmsg zero-alloc pins: the public Broadcast
// necessarily copies its payload, but from the shard goroutine down to
// the transport no allocation may remain.
func TestGroupFramesSteadyStateAllocs(t *testing.T) {
	for _, version := range []uint8{pdu.WireVersion, pdu.WireVersion2} {
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			tr := &nullBatchTransport{}
			f := newWireGroupFrames(tr, version, 0, obsv.NewLinkMetrics())
			p := &pdu.PDU{
				Kind: pdu.KindData, CID: 1, Src: 0, SEQ: 0,
				ACK: make([]pdu.Seq, 4), LSrc: pdu.NoEntity,
				Data: make([]byte, 64),
			}
			groups := []uint32{7, 9, 400}
			step := func() {
				for _, g := range groups {
					p.SEQ++
					f.Append(g, p)
				}
				f.Flush()
			}
			// Warm up: instantiate per-group send states, grow the build
			// buffers and the staged slice to their steady-state sizes.
			for i := 0; i < 8; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(200, step); allocs > 0 {
				t.Errorf("v%d Append+Flush allocates %.2f per op in steady state, want 0", version, allocs)
			}
			if tr.batches == 0 {
				t.Fatal("staged-batch path never taken")
			}
		})
	}
}

func TestGroupNameFoldsIntoWireRange(t *testing.T) {
	// Group IDs must fit the v3 header's 28-bit field whatever the name.
	for _, name := range []string{"", "a", "costarring", "liquid", "déjà vu", "x/y/z"} {
		g := Group(name)
		if uint32(g) > 0x0FFFFFFF {
			t.Errorf("Group(%q) = %d exceeds MaxGroupID", name, g)
		}
		if g == DefaultGroup {
			t.Errorf("Group(%q) mapped to the default group", name)
		}
	}
}
