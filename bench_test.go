// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per experiment in DESIGN.md's index), plus
// protocol microbenchmarks. Custom metrics carry the experiment's
// headline number; cmd/cobench prints the same data as tables and
// EXPERIMENTS.md records one run against the paper.
package cobcast_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cobcast"
	"cobcast/internal/core"
	"cobcast/internal/experiments"
	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/udpnet"
	"cobcast/internal/vclock"
	"cobcast/internal/workload"
)

var benchSizes = []int{2, 4, 8, 16}

// hotSizes extends the hot-path sweeps (Fig8Tco, HotPathPipeline) to the
// cluster scales the delta-stamp codec targets: the O(n) ACK vector only
// dominates the wire and fold cost from n≈64 up (experiment E12). The
// n=256 point is where the sparse fold engine's amortized-O(changed)
// claim is measured against the dense baseline (experiment E17).
var hotSizes = []int{2, 4, 8, 16, 64, 128, 256}

// captureStream records the PDUs arriving at entity 0 during a realistic
// n-entity run, for replay microbenchmarks.
func captureStream(b *testing.B, n, perSender int) []*pdu.PDU {
	b.Helper()
	var stream []*pdu.PDU
	c, err := simrun.New(simrun.Options{
		N:   n,
		Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		PDUTap: func(to, _ pdu.EntityID, p *pdu.PDU) {
			if to == 0 {
				stream = append(stream, p.Clone())
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	c.LoadWorkload(workload.NewContinuous(n, perSender, 64))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		b.Fatal(err)
	}
	return stream
}

// BenchmarkFig8Tco is Figure 8's Tco series (experiment E1a): protocol
// processing cost per received PDU at cluster size n. The paper's claim
// is O(n) growth.
func BenchmarkFig8Tco(b *testing.B) {
	for _, n := range hotSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			stream := captureStream(b, n, 8)
			b.ReportAllocs()
			b.ResetTimer()
			processed := 0
			for processed < b.N {
				b.StopTimer()
				ent, err := core.New(core.Config{ID: 0, N: n})
				if err != nil {
					b.Fatal(err)
				}
				now := time.Duration(0)
				b.StartTimer()
				for _, p := range stream {
					now += 10 * time.Microsecond
					_, _ = ent.Receive(p, now)
					if processed++; processed >= b.N {
						break
					}
				}
			}
		})
	}
}

// BenchmarkFig8TcoDense is BenchmarkFig8Tco with the sparse ACK-fold
// fast paths disabled (core.Config.DenseFold): the dense reference
// arithmetic every stamp operation falls back to. The Fig8Tco/Fig8TcoDense
// ratio at each n is experiment E17's fold-cost curve — the dense engine
// pays O(n) per PDU while the sparse engine amortizes to O(changed).
func BenchmarkFig8TcoDense(b *testing.B) {
	for _, n := range hotSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			stream := captureStream(b, n, 8)
			b.ReportAllocs()
			b.ResetTimer()
			processed := 0
			for processed < b.N {
				b.StopTimer()
				ent, err := core.New(core.Config{ID: 0, N: n, DenseFold: true})
				if err != nil {
					b.Fatal(err)
				}
				now := time.Duration(0)
				b.StartTimer()
				for _, p := range stream {
					now += 10 * time.Microsecond
					_, _ = ent.Receive(p, now)
					if processed++; processed >= b.N {
						break
					}
				}
			}
		})
	}
}

// BenchmarkFig8TcoRecorded is BenchmarkFig8Tco with the flight recorder
// enabled (experiment E16): the same replayed PDU stream with every
// lifecycle transition recorded into a live ring. The delta against
// Fig8Tco is the tracing overhead the always-on recorder charges the
// hot path; allocs/op must stay identical (the ring never allocates).
func BenchmarkFig8TcoRecorded(b *testing.B) {
	for _, n := range hotSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			stream := captureStream(b, n, 8)
			b.ReportAllocs()
			b.ResetTimer()
			processed := 0
			for processed < b.N {
				b.StopTimer()
				ent, err := core.New(core.Config{ID: 0, N: n, Flight: flight.NewRing(flight.DefaultEvents)})
				if err != nil {
					b.Fatal(err)
				}
				now := time.Duration(0)
				b.StartTimer()
				for _, p := range stream {
					now += 10 * time.Microsecond
					_, _ = ent.Receive(p, now)
					if processed++; processed >= b.N {
						break
					}
				}
			}
		})
	}
}

// BenchmarkFig8Tap is Figure 8's Tap series (experiment E1b):
// application-to-application delay on the real-time cluster, reported as
// the tap_us metric.
func BenchmarkFig8Tap(b *testing.B) {
	for _, n := range benchSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				tap, err := experiments.MeasureTapRealtime(n, 4)
				if err != nil {
					b.Fatal(err)
				}
				total += tap
			}
			b.ReportMetric(float64(total.Microseconds())/float64(b.N), "tap_us")
		})
	}
}

// BenchmarkTable1 is experiment E2: the full Example 4.1 / Figure 7
// exchange through the engine.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAckLatency2R is experiment E3: accept-to-delivery latency in
// units of the propagation delay R (paper: ≈ 2).
func BenchmarkAckLatency2R(b *testing.B) {
	for _, n := range []int{3, 5, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var ratio float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AckLatency([]int{n}, 2*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				ratio += rows[0].RatioToR
			}
			b.ReportMetric(ratio/float64(b.N), "xR")
		})
	}
}

// BenchmarkBufferOccupancy is experiment E4: peak resident PDUs against
// the paper's 2nW guideline, reported as resident_pdus.
func BenchmarkBufferOccupancy(b *testing.B) {
	for _, n := range []int{4, 8} {
		for _, w := range []int{4, 16} {
			n, w := n, w
			b.Run(fmt.Sprintf("n=%d/W=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				var peak int
				for i := 0; i < b.N; i++ {
					rows, err := experiments.BufferOccupancy([]int{n}, []int{w}, 10)
					if err != nil {
						b.Fatal(err)
					}
					if rows[0].MaxResident > peak {
						peak = rows[0].MaxResident
					}
				}
				b.ReportMetric(float64(peak), "resident_pdus")
				b.ReportMetric(float64(2*n*w), "bound_2nW")
			})
		}
	}
}

// BenchmarkPDULength is experiment E5: encoded PDU size (O(n)), reported
// as wire_bytes.
func BenchmarkPDULength(b *testing.B) {
	for _, n := range benchSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			p := &pdu.PDU{
				Kind: pdu.KindData, Src: 0, SEQ: 1,
				ACK: make([]pdu.Seq, n), LSrc: pdu.NoEntity,
				Data: make([]byte, 64),
			}
			var size int
			for i := 0; i < b.N; i++ {
				buf, err := p.Marshal()
				if err != nil {
					b.Fatal(err)
				}
				size = len(buf)
			}
			b.ReportMetric(float64(size), "wire_bytes")
		})
	}
}

// BenchmarkSelectiveVsGoBackN is experiment E6: retransmission volume of
// the CO protocol's selective scheme against the TO protocol's go-back-n
// under identical loss, reported as co_retx and gbn_retx.
func BenchmarkSelectiveVsGoBackN(b *testing.B) {
	for _, loss := range []float64{0.02, 0.05, 0.10} {
		loss := loss
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			b.ReportAllocs()
			var co, gbn uint64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RetxComparison(4, 80, []float64{loss}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				co += rows[0].CORetransmitted
				gbn += rows[0].GBNRetransmissions
			}
			b.ReportMetric(float64(co)/float64(b.N), "co_retx")
			b.ReportMetric(float64(gbn)/float64(b.N), "gbn_retx")
		})
	}
}

// BenchmarkCOvsCBCAST is experiment E7a: full per-PDU pipeline cost of
// the CO protocol vs CBCAST's vector-clock delivery test.
func BenchmarkCOvsCBCAST(b *testing.B) {
	b.Run("CO", func(b *testing.B) {
		for _, n := range benchSizes {
			n := n
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				stream := captureStream(b, n, 8)
				b.ReportAllocs()
				b.ResetTimer()
				processed := 0
				for processed < b.N {
					b.StopTimer()
					ent, err := core.New(core.Config{ID: 0, N: n})
					if err != nil {
						b.Fatal(err)
					}
					now := time.Duration(0)
					b.StartTimer()
					for _, p := range stream {
						now += 10 * time.Microsecond
						_, _ = ent.Receive(p, now)
						if processed++; processed >= b.N {
							break
						}
					}
				}
			})
		}
	})
	b.Run("CBCAST", func(b *testing.B) {
		for _, n := range benchSizes {
			n := n
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				rows, err := experiments.ISISCost([]int{n}, 8)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = rows // the cost is measured inside ISISCost; report it
				}
				b.ReportMetric(rows[0].CBCASTNsPerMsg, "cbcast_ns_per_msg")
			})
		}
	})
}

// BenchmarkOrderingPrimitive is experiment E7b: one causality decision —
// Theorem 4.1's two sequence comparisons (O(1)) against one vector-clock
// comparison (O(n)).
func BenchmarkOrderingPrimitive(b *testing.B) {
	for _, n := range benchSizes {
		n := n
		p := &pdu.PDU{Kind: pdu.KindData, Src: 0, SEQ: 5, ACK: make([]pdu.Seq, n)}
		q := &pdu.PDU{Kind: pdu.KindData, Src: 1, SEQ: 3, ACK: make([]pdu.Seq, n)}
		for i := range q.ACK {
			q.ACK[i] = 6
		}
		b.Run(fmt.Sprintf("seqtest/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var r pdu.Relation
			for i := 0; i < b.N; i++ {
				r = pdu.Compare(p, q)
			}
			_ = r
		})
		v, w := vclock.New(n), vclock.New(n)
		for i := range w {
			w[i] = uint64(i + 1)
		}
		b.Run(fmt.Sprintf("vclock/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var o vclock.Ordering
			for i := 0; i < b.N; i++ {
				o = v.Compare(w)
			}
			_ = o
		})
	}
}

// BenchmarkMessageComplexity is experiment E8: cluster-wide PDUs per
// application message (paper: O(n), not O(n²)), reported as pdus_per_msg.
func BenchmarkMessageComplexity(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var per float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.MessageComplexity([]int{n}, 8)
				if err != nil {
					b.Fatal(err)
				}
				per += rows[0].PerMessage
			}
			b.ReportMetric(per/float64(b.N), "pdus_per_msg")
			b.ReportMetric(float64(n*n), "n_squared")
		})
	}
}

// BenchmarkAblationWindow is ablation A1: completion time of a saturating
// workload as the flow-control window W varies.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		w := w
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationWindow(4, []int{w}, 12)
				if err != nil {
					b.Fatal(err)
				}
				virtual += rows[0].CompletionVirtual
			}
			b.ReportMetric(float64(virtual.Microseconds())/float64(b.N), "completion_virtual_us")
		})
	}
}

// BenchmarkAblationDeferredAck is ablation A2: confirmation traffic as
// the deferred-ack interval varies.
func BenchmarkAblationDeferredAck(b *testing.B) {
	for _, iv := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		iv := iv
		b.Run(iv.String(), func(b *testing.B) {
			b.ReportAllocs()
			var pdus uint64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationDeferredAck(4, []time.Duration{iv}, 12)
				if err != nil {
					b.Fatal(err)
				}
				pdus += rows[0].TotalPDUs
			}
			b.ReportMetric(float64(pdus)/float64(b.N), "total_pdus")
		})
	}
}

// BenchmarkAblationBuffer is ablation A3: buffer-overrun loss induced by
// shrinking the receive inbox on the real-time network.
func BenchmarkAblationBuffer(b *testing.B) {
	for _, cap := range []int{8, 64, 1024} {
		cap := cap
		b.Run(fmt.Sprintf("inbox=%d", cap), func(b *testing.B) {
			b.ReportAllocs()
			var over, retx uint64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationBuffer(3, []int{cap}, 30)
				if err != nil {
					b.Fatal(err)
				}
				over += rows[0].Overruns
				retx += rows[0].Retransmitted
			}
			b.ReportMetric(float64(over)/float64(b.N), "overruns")
			b.ReportMetric(float64(retx)/float64(b.N), "retransmitted")
		})
	}
}

// BenchmarkTotalOrderOverhead compares virtual-time completion of the
// same workload under CO and TO service levels — the latency price of
// total order.
func BenchmarkTotalOrderOverhead(b *testing.B) {
	for _, mode := range []struct {
		name  string
		total bool
	}{{"CO", false}, {"TO", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				c, err := simrun.New(simrun.Options{
					N:    4,
					Core: core.Config{TotalOrder: mode.total},
					Net:  []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
				})
				if err != nil {
					b.Fatal(err)
				}
				c.LoadWorkload(workload.NewContinuous(4, 8, 32))
				done, err := c.RunToQuiescence(2 * time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				virtual += done
			}
			b.ReportMetric(float64(virtual.Microseconds())/float64(b.N), "completion_virtual_us")
		})
	}
}

// BenchmarkEndToEndThroughput measures sustained real-time throughput of
// the public cluster: messages fully delivered everywhere per second.
func BenchmarkEndToEndThroughput(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tap, err := experiments.MeasureTapRealtime(n, 10)
			if err != nil {
				b.Fatal(err)
			}
			_ = tap
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.MeasureTapRealtime(n, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarshalUnmarshal measures the wire codec.
func BenchmarkMarshalUnmarshal(b *testing.B) {
	p := &pdu.PDU{
		Kind: pdu.KindData, CID: 1, Src: 2, SEQ: 99,
		ACK: make([]pdu.Seq, 8), BUF: 1024, LSrc: pdu.NoEntity,
		Data: make([]byte, 256),
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	buf, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pdu.Unmarshal(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMarshalAppend measures the allocation-free encode path: one
// buffer reused across every marshal. Steady state must report 0
// allocs/op (guarded by TestPooledCodecZeroAllocs in internal/pdu).
func BenchmarkMarshalAppend(b *testing.B) {
	p := &pdu.PDU{
		Kind: pdu.KindData, CID: 1, Src: 2, SEQ: 99,
		ACK: make([]pdu.Seq, 8), BUF: 1024, LSrc: pdu.NoEntity,
		Data: make([]byte, 256),
	}
	buf := make([]byte, 0, p.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.MarshalAppend(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchHotPathCodec is the full datagram round trip as the node loop
// runs it: pooled buffer out of pdu.GetDatagram, MarshalAppend into it,
// UnmarshalFrom into a scratch PDU, buffer back to the pool. When lm/tm
// are non-nil it also pays the per-datagram bookkeeping the wireLink and
// udpnet add around the codec (experiment E11).
func benchHotPathCodec(b *testing.B, lm *obsv.LinkMetrics, tm *obsv.TransportMetrics) {
	p := &pdu.PDU{
		Kind: pdu.KindData, CID: 1, Src: 2, SEQ: 99,
		ACK: make([]pdu.Seq, 8), BUF: 1024, LSrc: pdu.NoEntity,
		Data: make([]byte, 256),
	}
	var scratch pdu.PDU
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := p.MarshalAppend(pdu.GetDatagram())
		if err != nil {
			b.Fatal(err)
		}
		lm.Flush(1, false)
		if tm != nil {
			tm.Sent.Inc()
			tm.Received.Inc()
		}
		if err := scratch.UnmarshalFrom(buf); err != nil {
			b.Fatal(err)
		}
		pdu.PutDatagram(buf)
	}
}

// BenchmarkHotPathCodec is the uninstrumented codec round trip. Steady
// state must report 0 allocs/op.
func BenchmarkHotPathCodec(b *testing.B) {
	benchHotPathCodec(b, nil, nil)
}

// BenchmarkHotPathCodecInstrumented is the same round trip with live
// link and transport metrics attached, as a node registered on an obsv
// registry pays it. Must also stay at 0 allocs/op; the ns/op delta vs
// BenchmarkHotPathCodec is the instrumentation cost per datagram.
func BenchmarkHotPathCodecInstrumented(b *testing.B) {
	benchHotPathCodec(b, obsv.NewLinkMetrics(), &obsv.TransportMetrics{})
}

// BenchmarkHotPathCodecV2 is the v2 analogue of BenchmarkHotPathCodec:
// the same pooled-buffer datagram round trip with a live delta-stamp
// chain — SEQ advances and one ACK entry moves per PDU, so the steady
// state alternates deltas with interval-th full stamps exactly like a
// sender's link. Steady state must report 0 allocs/op (the codec-path
// gate of PR 5) at every n.
func BenchmarkHotPathCodecV2(b *testing.B) {
	for _, n := range []int{8, 16, 64, 128} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := &pdu.PDU{
				Kind: pdu.KindData, CID: 1, Src: 2, SEQ: 0,
				ACK: make([]pdu.Seq, n), BUF: 1024, LSrc: pdu.NoEntity,
				Data: make([]byte, 256),
			}
			enc := pdu.NewStampEncoder(0)
			var dec pdu.StampDecoder
			var scratch pdu.PDU
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SEQ++
				p.ACK[i%n]++
				buf, err := p.MarshalAppendV2(pdu.GetDatagram(), enc)
				if err != nil {
					b.Fatal(err)
				}
				if err := scratch.UnmarshalFromV2(buf, &dec); err != nil {
					b.Fatal(err)
				}
				pdu.PutDatagram(buf)
			}
		})
	}
}

// BenchmarkFig8WireBytes is experiment E12: the E5 PDU-length redo at
// the byte level. It replays the Fig. 8 continuous workload through
// both wire codecs and reports mean encoded bytes per DT PDU as the
// v1_bytes and v2_bytes metrics (reduction as v2_saved_frac). The PR 5
// acceptance gate reads the n=64 point: v2 must shed at least half of
// v1's bytes.
func BenchmarkFig8WireBytes(b *testing.B) {
	for _, n := range []int{8, 16, 64, 128} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rows, err := experiments.WireBytes([]int{n}, 8, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rows
			}
			b.ReportMetric(rows[0].V1BytesPerDT, "v1_bytes")
			b.ReportMetric(rows[0].V2BytesPerDT, "v2_bytes")
			b.ReportMetric(rows[0].Reduction, "v2_saved_frac")
		})
	}
}

// BenchmarkHotPathPipeline drives a lossless n-entity mesh closed-loop:
// each iteration broadcasts one message and relays every induced PDU
// (acks included) until the cluster is silent, so one iteration covers
// the whole receive→pack→ack→commit pipeline through confirmation.
// Unlike core's BenchmarkSubmitReceive it does not drop second-order
// traffic, and unlike BenchmarkFig8Tco the entities live across
// iterations, exposing steady-state amortized cost and allocations of
// the incremental confirmation minima.
func BenchmarkHotPathPipeline(b *testing.B) {
	benchHotPathPipeline(b, func() *obsv.EntityMetrics { return nil })
}

// BenchmarkHotPathPipelineInstrumented is the same closed-loop mesh with
// a live EntityMetrics on every entity: each input additionally mirrors
// its stat deltas into atomic counters and feeds the latency histograms.
// The ns/op delta vs BenchmarkHotPathPipeline is the per-message cost of
// the obsv layer (experiment E11).
func BenchmarkHotPathPipelineInstrumented(b *testing.B) {
	benchHotPathPipeline(b, obsv.NewEntityMetrics)
}

func benchHotPathPipeline(b *testing.B, metrics func() *obsv.EntityMetrics) {
	type envelope struct {
		src int
		p   *pdu.PDU
	}
	for _, n := range hotSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ents := make([]*core.Entity, n)
			for i := range ents {
				ent, err := core.New(core.Config{
					ID: pdu.EntityID(i), N: n,
					Window:                 1 << 20,
					DisableDeferredConfirm: true,
					Metrics:                metrics(),
				})
				if err != nil {
					b.Fatal(err)
				}
				ents[i] = ent
			}
			payload := make([]byte, 64)
			queue := make([]envelope, 0, 64)
			now := time.Duration(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += time.Microsecond
				src := i % n
				out := ents[src].Submit(payload, now)
				for _, p := range out.PDUs {
					queue = append(queue, envelope{src, p})
				}
				for head := 0; head < len(queue); head++ {
					ev := queue[head]
					for j := range ents {
						if j == ev.src {
							continue
						}
						o, err := ents[j].Receive(ev.p.Clone(), now)
						if err != nil {
							b.Fatal(err)
						}
						for _, q := range o.PDUs {
							queue = append(queue, envelope{j, q})
						}
					}
				}
				queue = queue[:0]
			}
		})
	}
}

// BenchmarkFrameCodec measures the batch-frame layer on top of the PDU
// codec: encode a k-PDU batch into one frame and decode it back through
// a scratch PDU, as the wireLink does per datagram. Reported per PDU;
// steady state must show 0 allocs/op.
func BenchmarkFrameCodec(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			p := &pdu.PDU{
				Kind: pdu.KindData, CID: 1, Src: 2, SEQ: 99,
				ACK: make([]pdu.Seq, 8), BUF: 1024, LSrc: pdu.NoEntity,
				Data: make([]byte, 256),
			}
			var enc pdu.FrameEncoder
			var dec pdu.FrameDecoder
			var scratch pdu.PDU
			buf := make([]byte, 0, batch*(p.EncodedSize()+pdu.FrameEntrySize)+pdu.FrameHeaderSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				enc.Begin(buf[:0])
				for j := 0; j < batch; j++ {
					if err := enc.Append(p); err != nil {
						b.Fatal(err)
					}
				}
				frame := enc.Bytes()
				buf = frame
				if err := dec.Reset(frame); err != nil {
					b.Fatal(err)
				}
				for {
					ok, err := dec.Next(&scratch)
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
				}
			}
		})
	}
}

// newBenchUDPMesh binds n loopback transports into a full mesh
// (discover ephemeral ports first, then re-bind with peer lists). The
// discover-then-rebind window can lose a port to another process, so
// the whole mesh build retries a few times before giving up.
func newBenchUDPMesh(b *testing.B, n int, opts ...udpnet.Option) []*udpnet.Transport {
	b.Helper()
	const attempts = 5
	for attempt := 1; ; attempt++ {
		addrs := make([]string, n)
		for i := range addrs {
			tr, err := udpnet.New("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
			if err != nil {
				b.Fatal(err)
			}
			addrs[i] = tr.LocalAddr()
			if err := tr.Close(); err != nil {
				b.Fatal(err)
			}
		}
		trs := make([]*udpnet.Transport, 0, n)
		ok := true
		for i := 0; i < n && ok; i++ {
			var peers []string
			for j, a := range addrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			tr, err := udpnet.New(addrs[i], peers, 8192, opts...)
			if err != nil {
				if attempt == attempts {
					b.Fatalf("rebind %d: %v", i, err)
				}
				ok = false
				break
			}
			trs = append(trs, tr)
		}
		if ok {
			return trs
		}
		for _, tr := range trs {
			tr.Close()
		}
	}
}

// BenchmarkBatchedThroughput is the wire-speed headline experiment: PDU
// broadcast throughput over the real UDP loopback path across three
// wire shapes. "per-datagram" is the seed's wire behavior (one frame of
// one PDU per datagram, one sendto per peer transmission); "batched" is
// the flush-on-loop-idle link's frame batching from PR 2 (16 PDUs per
// frame, four frames staged per flush) over the same portable sendto
// path; "mmsg" is that frame batching over the batched sendmmsg/
// recvmmsg path, where one staged flush toward all peers is a single
// syscall. One benchmark op is one PDU broadcast from node 0 to the n-1
// receivers, which drain and decode concurrently; the delivered-frac
// metric reports the fraction of PDU copies that survived the lossy
// path. The sender hot loop must stay at 0 allocs/op on every shape.
func BenchmarkBatchedThroughput(b *testing.B) {
	// frameGroup mirrors the frames a multi-frame flush stages before
	// handing them to BroadcastBatch (see wireLink.sendStaged).
	const frameGroup = 4
	for _, mode := range []struct {
		name  string
		batch int // PDUs per frame
		group int // frames per BroadcastBatch
		mmsg  bool
	}{
		{"per-datagram", 1, 1, false},
		{"batched", 16, frameGroup, false},
		{"mmsg", 16, frameGroup, true},
	} {
		for _, n := range []int{2, 4, 8, 16, 32} {
			mode, n := mode, n
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				trs := newBenchUDPMesh(b, n, udpnet.WithBatchSyscalls(mode.mmsg))
				if mode.mmsg && !trs[0].BatchSyscalls() {
					for _, tr := range trs {
						tr.Close()
					}
					b.Skip("batched syscalls unsupported on this platform")
				}
				var delivered atomic.Uint64
				var wg sync.WaitGroup
				for _, tr := range trs[1:] {
					wg.Add(1)
					go func(tr *udpnet.Transport) {
						defer wg.Done()
						var dec pdu.FrameDecoder
						var scratch pdu.PDU
						for raw := range tr.Recv() {
							if dec.Reset(raw) == nil {
								for {
									ok, err := dec.Next(&scratch)
									if !ok || err != nil {
										break
									}
									delivered.Add(1)
								}
							}
							pdu.PutDatagram(raw)
						}
					}(tr)
				}
				p := &pdu.PDU{
					Kind: pdu.KindData, CID: 1, Src: 0, SEQ: 1,
					ACK: make([]pdu.Seq, n), LSrc: pdu.NoEntity,
					Data: make([]byte, 64),
				}
				var enc pdu.FrameEncoder
				bufs := make([][]byte, mode.group)
				for k := range bufs {
					bufs[k] = make([]byte, 0, udpnet.MaxDatagram)
				}
				staged := make([][]byte, 0, mode.group)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; {
					staged = staged[:0]
					for g := 0; g < mode.group && i < b.N; g++ {
						enc.Begin(bufs[g][:0])
						for j := 0; j < mode.batch && i < b.N; j++ {
							p.SEQ = pdu.Seq(i + 1)
							if err := enc.Append(p); err != nil {
								b.Fatal(err)
							}
							i++
						}
						bufs[g] = enc.Bytes()
						staged = append(staged, bufs[g])
					}
					if len(staged) == 1 {
						if err := trs[0].Broadcast(staged[0]); err != nil {
							b.Fatal(err)
						}
					} else if err := trs[0].BroadcastBatch(staged); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				time.Sleep(20 * time.Millisecond) // let in-flight datagrams land
				sent := trs[0].Stats()
				for _, tr := range trs {
					tr.Close()
				}
				wg.Wait()
				// delivered-frac: PDU copies surviving the lossy
				// saturated path; delivered_kpps: decoded PDU copies
				// per second of measured send time — the end-to-end
				// throughput the batching is after; syscalls_per_op:
				// send-side syscalls per PDU broadcast, the quantity
				// sendmmsg amortizes.
				total := uint64(b.N) * uint64(n-1)
				b.ReportMetric(float64(delivered.Load())/float64(total), "delivered-frac")
				b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds()/1000, "delivered_kpps")
				calls := sent.Sent + sent.SendErrors
				if sent.SendmmsgCalls > 0 {
					calls = sent.SendmmsgCalls
				}
				b.ReportMetric(float64(calls)/float64(b.N), "syscalls_per_op")
			})
		}
	}
}

// BenchmarkMultiGroupThroughput is experiment E14's headline number: the
// public multi-group runtime driving 8 named groups over an n=2
// in-process cluster, swept over the shard-goroutine count. One op is
// one GroupPort.Broadcast (groups visited round-robin); the benchmark
// waits for every delivery everywhere and reports cluster-wide ordered
// deliveries per second as delivered_kpps. allocs/op is reported
// honestly — the public Broadcast copies its payload by contract, so
// the per-op figure is nonzero here; the zero-alloc claim for the
// underlying frame path is pinned by TestGroupFramesSteadyStateAllocs.
// On a multi-core host delivered_kpps should grow with shards; a
// single-core host (GOMAXPROCS=1) serializes the shard goroutines and
// shows flat-to-declining numbers instead — shard parallelism cannot
// exceed schedulable CPUs, which is why the registry's shard-count
// heuristic caps at runtime.GOMAXPROCS(0). Read shard sweeps from a
// constrained CI runner accordingly.
func BenchmarkMultiGroupThroughput(b *testing.B) {
	const n, groups = 2, 8
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := cobcast.NewCluster(n,
				cobcast.WithGroupShards(shards),
				cobcast.WithDeferredAckInterval(time.Millisecond),
				cobcast.WithRetransmitTimeout(5*time.Millisecond),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ports := experiments.MultiGroupPorts(c, n, groups)
			var delivered atomic.Uint64
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				for g := 0; g < groups; g++ {
					wg.Add(1)
					go func(ch <-chan cobcast.Message) {
						defer wg.Done()
						for range ch {
							delivered.Add(1)
						}
					}(ports[i][g].Deliveries())
				}
			}
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ports[i%n][i%groups].Broadcast(payload); err != nil {
					b.Fatal(err)
				}
			}
			want := uint64(b.N) * n
			for delivered.Load() < want {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds()/1000, "delivered_kpps")
			c.Close()
			wg.Wait()
		})
	}
}
